#include "core/part_miner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "miner/gaston.h"
#include "miner/gspan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace partminer {

double PartMinerResult::UnitSecondsSum() const {
  double total = 0;
  for (const double t : unit_mining_seconds) total += t;
  return total;
}

double PartMinerResult::UnitSecondsMax() const {
  double max_t = 0;
  for (const double t : unit_mining_seconds) max_t = std::max(max_t, t);
  return max_t;
}

double PartMinerResult::AggregateSeconds() const {
  return partition_seconds + UnitSecondsSum() + merge_seconds + verify_seconds;
}

double PartMinerResult::ParallelSeconds() const {
  return partition_seconds + UnitSecondsMax() + merge_seconds + verify_seconds;
}

PartMiner::PartMiner(const PartMinerOptions& options) : options_(options) {}

int PartMiner::ResolveSupport(int db_size) const {
  if (options_.min_support_count > 0) return options_.min_support_count;
  const int count = static_cast<int>(
      std::ceil(options_.min_support_fraction * db_size));
  return std::max(1, count);
}

int PartMiner::NodeSupport(int index) const {
  // ceil(sup / 2^depth), computed by repeated halving so intermediate
  // ceilings compose the way the completeness argument requires.
  int support = root_support_;
  for (int d = 0; d < partitioned_.tree()[index].depth; ++d) {
    support = (support + 1) / 2;
  }
  return std::max(1, support);
}

std::unique_ptr<FrequentSubgraphMiner> PartMiner::MakeUnitMiner() const {
  switch (options_.unit_miner) {
    case UnitMinerKind::kGaston:
      return std::make_unique<GastonMiner>();
    case UnitMinerKind::kGSpan:
      return std::make_unique<GSpanMiner>();
  }
  PM_CHECK(false);
  return nullptr;
}

PartMinerResult PartMiner::Mine(const GraphDatabase& db) {
  PM_TRACE_SPAN("part_miner.mine",
                {{"graphs", db.size()},
                 {"k", options_.partition.k},
                 {"threads", options_.unit_mining_threads}});
  PM_METRIC_COUNTER("partminer.mine_runs")->Increment();
  PartMinerResult result;
  root_support_ = ResolveSupport(db.size());
  result.min_support_count = root_support_;

  // Phase 1: divide the database into k units (Figure 6).
  Stopwatch partition_watch;
  {
    PM_TRACE_SPAN("partition", {{"k", options_.partition.k}});
    partitioned_ = PartitionedDatabase::Create(db, options_.partition);
  }
  result.partition_seconds = partition_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.partition_ms")
      ->Observe(result.partition_seconds * 1e3);

  const std::vector<MergeTreeNode>& tree = partitioned_.tree();
  node_patterns_.assign(tree.size(), PatternSet());
  node_frontiers_.assign(tree.size(), NodeFrontier());
  result.unit_mining_seconds.assign(partitioned_.k(), 0.0);

  // Phase 2a: mine every unit with the memory-based miner at its reduced
  // support (Figure 11 lines 4-5). Units are independent, so with
  // unit_mining_threads > 0 they run concurrently, each worker with its own
  // miner instance and output slot.
  std::vector<int> leaf_nodes;
  for (size_t node = 0; node < tree.size(); ++node) {
    if (tree[node].left == -1) leaf_nodes.push_back(static_cast<int>(node));
  }
  auto mine_unit = [&](int node, ThreadPool* pool) {
    const int unit_index = tree[node].lo;
    PM_TRACE_SPAN("unit_mine",
                  {{"unit", unit_index}, {"support", NodeSupport(node)}});
    Stopwatch watch;
    const GraphDatabase unit_db = partitioned_.MaterializeUnit(db, unit_index);
    MinerOptions miner_options;
    miner_options.min_support = NodeSupport(node);
    miner_options.max_edges = options_.max_edges;
    miner_options.capture_frontier = &node_frontiers_[node].map;
    miner_options.pool = pool;
    node_frontiers_[node].valid = true;
    std::unique_ptr<FrequentSubgraphMiner> unit_miner = MakeUnitMiner();
    node_patterns_[node] = unit_miner->Mine(unit_db, miner_options);
    result.unit_mining_seconds[unit_index] = watch.ElapsedSeconds();
    PM_METRIC_HISTOGRAM("partminer.phase.unit_mine_ms")
        ->Observe(result.unit_mining_seconds[unit_index] * 1e3);
  };
  {
    PM_TRACE_SPAN("unit_mining", {{"units", leaf_nodes.size()}});
    if (options_.unit_mining_threads > 0) {
      // Pool width is exactly unit_mining_threads. Units and their mining
      // subtrees share the pool: a unit that finishes early frees workers
      // to steal extension subtrees of a still-running heavy unit, which is
      // what keeps the makespan near max-unit instead of sum-of-stragglers.
      //
      // Longest-unit-first: units are claimed in descending assigned-vertex
      // order through a shared counter, so whichever task body runs first
      // picks up the heaviest remaining unit — submission and steal order
      // cannot invert the schedule.
      std::vector<int64_t> unit_vertices(partitioned_.k(), 0);
      for (const std::vector<int>& graph_assign : partitioned_.assignments()) {
        for (const int unit : graph_assign) ++unit_vertices[unit];
      }
      std::vector<int> order = leaf_nodes;
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return unit_vertices[tree[a].lo] > unit_vertices[tree[b].lo];
      });
      ThreadPool pool(options_.unit_mining_threads);
      std::atomic<size_t> next{0};
      TaskGroup group(&pool);
      for (size_t t = 0; t < order.size(); ++t) {
        group.Spawn([&]() {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          mine_unit(order[i], &pool);
        });
      }
      group.Wait();
    } else {
      for (const int node : leaf_nodes) mine_unit(node, nullptr);
    }
  }

  // Phase 2b: merge-join bottom-up (Figure 11 lines 9-17). Nodes are stored
  // preorder, so iterating in reverse index order visits children first.
  Stopwatch merge_watch;
  {
    PM_TRACE_SPAN("merge");
    for (int node = static_cast<int>(tree.size()) - 1; node >= 0; --node) {
      if (tree[node].left == -1) continue;  // Leaf.
      PM_TRACE_SPAN("merge_node",
                    {{"node", node}, {"depth", tree[node].depth}});
      const GraphDatabase node_db =
          partitioned_.Materialize(db, tree[node].lo, tree[node].hi);
      MergeJoinOptions mj;
      mj.min_support = NodeSupport(node);
      mj.max_edges = options_.max_edges;
      node_patterns_[node] =
          MergeJoin(node_db, node_patterns_[tree[node].left],
                    node_patterns_[tree[node].right], mj, &result.merge_stats,
                    &node_frontiers_[node]);
    }
  }
  result.merge_seconds = merge_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.merge_ms")
      ->Observe(result.merge_seconds * 1e3);

  // Exact verification at the root: inherited patterns carry child-level
  // supports; this recount makes the output exact at the requested support.
  Stopwatch verify_watch;
  {
    PM_TRACE_SPAN("verify",
                  {{"candidates", node_patterns_[partitioned_.root()].size()},
                   {"support", root_support_}});
    verified_ = VerifyExact(db, node_patterns_[partitioned_.root()],
                            root_support_, &result.verify_stats);
  }
  result.verify_seconds = verify_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.verify_ms")
      ->Observe(result.verify_seconds * 1e3);

  result.patterns = verified_;
  mined_ = true;
  return result;
}

}  // namespace partminer
