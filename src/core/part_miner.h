#ifndef PARTMINER_CORE_PART_MINER_H_
#define PARTMINER_CORE_PART_MINER_H_

#include <climits>
#include <memory>
#include <string>
#include <vector>

#include "core/merge_join.h"
#include "core/verify.h"
#include "graph/graph.h"
#include "miner/miner.h"
#include "miner/pattern_set.h"
#include "partition/db_partition.h"

namespace partminer {

/// Which memory-based miner runs inside each unit (Section 4.2 uses Gaston;
/// gSpan is available for ablations).
enum class UnitMinerKind { kGaston = 0, kGSpan = 1 };

struct PartMinerOptions {
  /// Minimum support as a fraction of the database size (the paper's 1%-6%),
  /// ignored when min_support_count > 0.
  double min_support_fraction = 0.04;
  /// Absolute minimum support; takes precedence when positive.
  int min_support_count = -1;

  PartitionOptions partition;
  UnitMinerKind unit_miner = UnitMinerKind::kGaston;
  int max_edges = INT_MAX;

  /// Forwarded to IncMergeJoin (see MergeJoinOptions): updated-graph share
  /// above which the incremental merge falls back to an exact re-sweep.
  double inc_delta_sweep_max_fraction = 0.15;

  /// Number of threads for unit mining — the width of the work-stealing
  /// pool (see common/thread_pool.h). 0 mines units serially (the default;
  /// the *parallel time* metric is still reported). Positive values run
  /// units concurrently in longest-unit-first order — "PartMiner is
  /// inherently parallel in nature" (Section 1) — and additionally fan the
  /// unit miners' extension subtrees onto the same pool, so idle workers
  /// steal work from a straggling unit instead of waiting for it.
  int unit_mining_threads = 0;
};

/// Outcome of one PartMiner run, including the timing decomposition the
/// paper reports: aggregate (serial) time sums all unit mining times,
/// parallel time takes their maximum — "in the parallel mode (with 1 CPU),
/// the units are executed concurrently and we take the maximum of the time
/// spent in the units" (Section 5.1.3).
struct PartMinerResult {
  PatternSet patterns;  // Exact frequent subgraphs of D at min support.

  double partition_seconds = 0;
  std::vector<double> unit_mining_seconds;  // Per unit.
  double merge_seconds = 0;
  double verify_seconds = 0;

  MergeJoinStats merge_stats;
  VerifyStats verify_stats;
  int min_support_count = 0;

  double UnitSecondsSum() const;
  double UnitSecondsMax() const;
  /// partition + sum(units) + merge + verify.
  double AggregateSeconds() const;
  /// partition + max(units) + merge + verify.
  double ParallelSeconds() const;
};

/// The PartMiner algorithm (Figure 11). Phase 1 divides the database into k
/// units via recursive bi-partitioning (DBPartition, Figure 6); Phase 2
/// mines each unit with the memory-based miner at reduced support and
/// recombines the unit results bottom-up with merge-joins, finishing with an
/// exact verification at the root.
///
/// Support thresholds: the root uses the requested support; each merge-tree
/// node at depth d uses ceil(sup / 2^d); a leaf unit is mined at its node
/// threshold. For power-of-two k this equals the paper's sup/k leaf rule;
/// for other k it is the strict-halving generalization that Theorem 3's
/// pigeonhole argument actually requires (see DESIGN.md).
///
/// After Mine() the object retains the partition, the per-node pattern sets
/// and the verified result — the state IncPartMiner updates incrementally.
class PartMiner {
 public:
  explicit PartMiner(const PartMinerOptions& options);

  /// Mines `db`. The database must outlive the PartMiner when IncPartMiner
  /// is used afterwards.
  PartMinerResult Mine(const GraphDatabase& db);

  const PartMinerOptions& options() const { return options_; }

  /// State accessors for IncPartMiner and the experiment harnesses.
  bool mined() const { return mined_; }
  const PartitionedDatabase& partitioned() const { return partitioned_; }
  PartitionedDatabase& mutable_partitioned() { return partitioned_; }
  /// Pattern set per merge-tree node (indexed like partitioned().tree()).
  const std::vector<PatternSet>& node_patterns() const {
    return node_patterns_;
  }
  std::vector<PatternSet>& mutable_node_patterns() { return node_patterns_; }
  /// Mining frontier per merge-tree node (see FrontierMap) — the cache that
  /// makes IncMergeJoin isomorphism-free.
  const std::vector<NodeFrontier>& node_frontiers() const {
    return node_frontiers_;
  }
  std::vector<NodeFrontier>& mutable_node_frontiers() {
    return node_frontiers_;
  }
  /// The exact verified result of the last Mine()/incremental update.
  const PatternSet& verified() const { return verified_; }
  void set_verified(PatternSet p) { verified_ = std::move(p); }
  /// Support threshold for tree node `index`.
  int NodeSupport(int index) const;
  /// Resolved absolute root support for a database of `db_size` graphs.
  int ResolveSupport(int db_size) const;

  /// Creates the configured unit miner.
  std::unique_ptr<FrequentSubgraphMiner> MakeUnitMiner() const;

  /// State-restoration hook for LoadMinerState: marks the miner as mined
  /// with the given resolved root support. The partition, node caches and
  /// verified set must have been installed through the mutable accessors.
  void RestoreMinedState(int root_support) {
    mined_ = true;
    root_support_ = root_support;
  }
  int root_support() const { return root_support_; }

 private:
  PartMinerOptions options_;
  bool mined_ = false;
  int root_support_ = 0;
  PartitionedDatabase partitioned_;
  std::vector<PatternSet> node_patterns_;
  std::vector<NodeFrontier> node_frontiers_;
  PatternSet verified_;
};

}  // namespace partminer

#endif  // PARTMINER_CORE_PART_MINER_H_
