#ifndef PARTMINER_CORE_STATE_IO_H_
#define PARTMINER_CORE_STATE_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/part_miner.h"

namespace partminer {

/// Persistence for the incremental-mining state. The paper's setting is a
/// long-lived evolving database; a maintenance process must survive
/// restarts without re-mining from scratch. SaveMinerState captures
/// everything IncPartMiner needs — the partition assignments and merge
/// tree, every node's exact pattern cache, the frontier caches, and the
/// verified result — in a versioned line-oriented text format. The file
/// ends with an integrity footer (`footer <payload_bytes> <fnv1a_hex>`);
/// Load validates the footer before trusting any of the payload, so a
/// truncated or bit-flipped file fails with a descriptive Corruption
/// status instead of silently restoring bad state.
///
/// The database itself is not stored (persist it separately with
/// WriteGraphDatabaseFile); on load the assignments must match the database
/// the state was saved against, which is checked structurally.
Status SaveMinerState(const PartMiner& miner, std::ostream& out);
Status SaveMinerStateFile(const PartMiner& miner, const std::string& path);

/// Restores a previously saved state into `miner` (constructed with
/// compatible options — in particular the same k). After a successful load
/// the miner behaves as if it had just completed Mine() on the saved
/// database: IncPartMiner::Update may be called directly.
Status LoadMinerState(std::istream& in, PartMiner* miner);
Status LoadMinerStateFile(const std::string& path, PartMiner* miner);

}  // namespace partminer

#endif  // PARTMINER_CORE_STATE_IO_H_
