#include "core/verify.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "core/merge_join.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"

namespace partminer {

void VerifyStats::Accumulate(const VerifyStats& other) {
  patterns_in += other.patterns_in;
  patterns_kept += other.patterns_kept;
  full_scans += other.full_scans;
  graphs_examined += other.graphs_examined;
  apriori_dropped += other.apriori_dropped;
}

void VerifyStats::PublishToRegistry() const {
  PM_METRIC_COUNTER("verify.patterns_in")->Add(patterns_in);
  PM_METRIC_COUNTER("verify.patterns_kept")->Add(patterns_kept);
  PM_METRIC_COUNTER("verify.full_scans")->Add(full_scans);
  PM_METRIC_COUNTER("verify.graphs_examined")->Add(graphs_examined);
  PM_METRIC_COUNTER("verify.apriori_dropped")->Add(apriori_dropped);
}

namespace {

/// Candidates grouped by edge count, ascending. Pointers stay valid while
/// `candidates` is unmodified, which Verify guarantees.
std::vector<std::vector<const PatternInfo*>> ByLevel(
    const PatternSet& candidates) {
  std::vector<std::vector<const PatternInfo*>> levels;
  for (const PatternInfo& p : candidates.patterns()) {
    const size_t k = p.code.size();
    if (levels.size() < k) levels.resize(k);
    levels[k - 1].push_back(&p);
  }
  return levels;
}

/// Finds the verified (k-1)-subpattern of `pattern` with the smallest TID
/// list; returns nullptr when none of the subpatterns verified (Apriori:
/// the pattern is infrequent).
const PatternInfo* SmallestVerifiedParent(const Graph& pattern,
                                          const PatternSet& verified) {
  const PatternInfo* best = nullptr;
  ForEachMaximalSubpattern(pattern, [&](const DfsCode& sub) {
    const PatternInfo* info = verified.Find(sub);
    if (info != nullptr &&
        (best == nullptr || info->tids.size() < best->tids.size())) {
      best = info;
    }
  });
  return best;
}

using DeltaContext = struct {
  const PatternSet* old_verified;
  const std::vector<int>* updated_graphs;
};

/// Counts `candidate` on `db` exactly. Order of preference: trust an
/// already-exact candidate, delta recount (old info available),
/// parent-TID-restricted count, full scan (1-edge or no parent info).
bool CountPattern(const GraphDatabase& db, const PatternInfo& candidate,
                  const PatternSet& verified, int min_support,
                  const DeltaContext* delta, VerifyStats* stats,
                  PatternInfo* out) {
  const DfsCode& code = candidate.code;
  if (candidate.exact_tids) {
    // Counted exactly against `db` upstream (the root merge node's database
    // is the database itself); only the threshold filter remains.
    if (candidate.support < min_support) return false;
    *out = candidate;
    return true;
  }
  const Graph pattern = code.ToGraph();

  if (delta != nullptr) {
    const PatternInfo* old_info = delta->old_verified->Find(code);
    if (old_info != nullptr) {
      // Delta recount: only updated graphs can change containment.
      std::vector<int> tids;
      std::set_difference(old_info->tids.begin(), old_info->tids.end(),
                          delta->updated_graphs->begin(),
                          delta->updated_graphs->end(),
                          std::back_inserter(tids));
      const SubgraphMatcher matcher(pattern);
      std::vector<int> updated_hits;
      stats->graphs_examined +=
          static_cast<int64_t>(delta->updated_graphs->size());
      matcher.CountSupportAmong(db, *delta->updated_graphs, &updated_hits);
      std::vector<int> merged;
      std::merge(tids.begin(), tids.end(), updated_hits.begin(),
                 updated_hits.end(), std::back_inserter(merged));
      if (static_cast<int>(merged.size()) < min_support) return false;
      out->code = code;
      out->support = static_cast<int>(merged.size());
      out->tids = std::move(merged);
      return true;
    }
  }

  const SubgraphMatcher matcher(pattern);
  if (code.size() == 1) {
    ++stats->full_scans;
    stats->graphs_examined += db.size();
    out->support = matcher.CountSupport(db, &out->tids);
  } else {
    const PatternInfo* parent = SmallestVerifiedParent(pattern, verified);
    if (parent == nullptr) {
      ++stats->apriori_dropped;
      return false;
    }
    stats->graphs_examined += static_cast<int64_t>(parent->tids.size());
    out->support = matcher.CountSupportAmong(db, parent->tids, &out->tids);
  }
  if (out->support < min_support) return false;
  out->code = code;
  return true;
}

PatternSet Verify(const GraphDatabase& db, const PatternSet& candidates,
                  int min_support, const DeltaContext* delta,
                  VerifyStats* stats) {
  // Per-call deltas accumulate locally, reach the registry once at the end,
  // and fold into the caller's struct (keeping the existing struct API).
  VerifyStats local;
  VerifyStats* s = &local;
  s->patterns_in += candidates.size();

  PatternSet verified;
  for (const std::vector<const PatternInfo*>& level : ByLevel(candidates)) {
    for (const PatternInfo* candidate : level) {
      PatternInfo info;
      if (CountPattern(db, *candidate, verified, min_support, delta, s,
                       &info)) {
        verified.Upsert(std::move(info));
        ++s->patterns_kept;
      }
    }
  }
  local.PublishToRegistry();
  if (stats != nullptr) stats->Accumulate(local);
  return verified;
}

}  // namespace

PatternSet VerifyExact(const GraphDatabase& db, const PatternSet& candidates,
                       int min_support, VerifyStats* stats) {
  return Verify(db, candidates, min_support, /*delta=*/nullptr, stats);
}

PatternSet VerifyDelta(const GraphDatabase& db, const PatternSet& candidates,
                       const PatternSet& old_verified,
                       const std::vector<int>& updated_graphs,
                       int min_support, VerifyStats* stats) {
  std::vector<int> sorted_updated = updated_graphs;
  std::sort(sorted_updated.begin(), sorted_updated.end());
  DeltaContext delta{&old_verified, &sorted_updated};
  return Verify(db, candidates, min_support, &delta, stats);
}

}  // namespace partminer
