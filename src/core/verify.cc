#include "core/verify.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/logging.h"
#include "core/merge_join.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "graph/label_index.h"
#include "obs/metrics.h"

namespace partminer {

void VerifyStats::Accumulate(const VerifyStats& other) {
  patterns_in += other.patterns_in;
  patterns_kept += other.patterns_kept;
  full_scans += other.full_scans;
  graphs_examined += other.graphs_examined;
  apriori_dropped += other.apriori_dropped;
}

void VerifyStats::PublishToRegistry() const {
  PM_METRIC_COUNTER("verify.patterns_in")->Add(patterns_in);
  PM_METRIC_COUNTER("verify.patterns_kept")->Add(patterns_kept);
  PM_METRIC_COUNTER("verify.full_scans")->Add(full_scans);
  PM_METRIC_COUNTER("verify.graphs_examined")->Add(graphs_examined);
  PM_METRIC_COUNTER("verify.apriori_dropped")->Add(apriori_dropped);
}

namespace {

/// Candidates grouped by edge count, ascending. Pointers stay valid while
/// `candidates` is unmodified, which Verify guarantees.
std::vector<std::vector<const PatternInfo*>> ByLevel(
    const PatternSet& candidates) {
  std::vector<std::vector<const PatternInfo*>> levels;
  for (const PatternInfo& p : candidates.patterns()) {
    const size_t k = p.code.size();
    if (levels.size() < k) levels.resize(k);
    levels[k - 1].push_back(&p);
  }
  return levels;
}

/// Finds the verified (k-1)-subpattern of `pattern` with the smallest TID
/// set; returns nullptr when none of the subpatterns verified (Apriori:
/// the pattern is infrequent).
const PatternInfo* SmallestVerifiedParent(const Graph& pattern,
                                          const PatternSet& verified) {
  const PatternInfo* best = nullptr;
  int best_count = 0;
  ForEachMaximalSubpattern(pattern, [&](const DfsCode& sub) {
    const PatternInfo* info = verified.Find(sub);
    if (info == nullptr) return;
    const int count = info->tids.Count();
    if (best == nullptr || count < best_count) {
      best = info;
      best_count = count;
    }
  });
  return best;
}

struct DeltaContext {
  const PatternSet* old_verified;
  TidSet updated_set;
};

/// Intersects `scan` with the label-index candidates for `pattern` and
/// records the graphs the index ruled out; no-op when the index is absent.
/// The index candidates are a superset of the true TIDs, so intersecting can
/// never drop a graph the isomorphism test would have accepted.
void PruneWithIndex(const LabelIndex* index, const Graph& pattern,
                    TidSet* scan) {
  if (index == nullptr) return;
  const int before = scan->Count();
  *scan &= index->CandidatesFor(pattern);
  PM_METRIC_COUNTER("prune.graphs_skipped")->Add(before - scan->Count());
}

/// Counts `candidate` on `db` exactly. Order of preference: trust an
/// already-exact candidate, delta recount (old info available),
/// parent-TID-restricted count, full scan (1-edge or no parent info). Every
/// counting path first narrows its scan set through the label index when one
/// is supplied.
bool CountPattern(const GraphDatabase& db, const PatternInfo& candidate,
                  const PatternSet& verified, int min_support,
                  const DeltaContext* delta, const LabelIndex* index,
                  VerifyStats* stats, PatternInfo* out) {
  const DfsCode& code = candidate.code;
  if (candidate.exact_tids) {
    // Counted exactly against `db` upstream (the root merge node's database
    // is the database itself); only the threshold filter remains.
    if (candidate.support < min_support) return false;
    *out = candidate;
    return true;
  }
  const Graph pattern = code.ToGraph();

  if (delta != nullptr) {
    const PatternInfo* old_info = delta->old_verified->Find(code);
    if (old_info != nullptr) {
      // Delta recount: only updated graphs can change containment, so
      // tids = (old \ updated) ∪ hits-among-updated.
      TidSet tids = old_info->tids;
      tids -= delta->updated_set;
      TidSet scan = delta->updated_set;
      PruneWithIndex(index, pattern, &scan);
      stats->graphs_examined += scan.Count();
      const SubgraphMatcher matcher(pattern);
      TidSet updated_hits;
      matcher.CountSupportAmong(db, scan, &updated_hits);
      tids |= updated_hits;
      const int support = tids.Count();
      if (support < min_support) return false;
      out->code = code;
      out->support = support;
      out->tids = std::move(tids);
      return true;
    }
  }

  const SubgraphMatcher matcher(pattern);
  if (code.size() == 1) {
    ++stats->full_scans;
    if (index != nullptr) {
      TidSet scan = index->CandidatesFor(pattern);
      PM_METRIC_COUNTER("prune.graphs_skipped")
          ->Add(db.size() - scan.Count());
      stats->graphs_examined += scan.Count();
      out->support = matcher.CountSupportAmong(db, scan, &out->tids);
    } else {
      stats->graphs_examined += db.size();
      out->support = matcher.CountSupport(db, &out->tids);
    }
  } else {
    const PatternInfo* parent = SmallestVerifiedParent(pattern, verified);
    if (parent == nullptr) {
      ++stats->apriori_dropped;
      return false;
    }
    TidSet scan = parent->tids;
    PruneWithIndex(index, pattern, &scan);
    stats->graphs_examined += scan.Count();
    out->support = matcher.CountSupportAmong(db, scan, &out->tids);
  }
  if (out->support < min_support) return false;
  out->code = code;
  return true;
}

PatternSet Verify(const GraphDatabase& db, const PatternSet& candidates,
                  int min_support, const DeltaContext* delta,
                  VerifyStats* stats) {
  // Per-call deltas accumulate locally, reach the registry once at the end,
  // and fold into the caller's struct (keeping the existing struct API).
  VerifyStats local;
  VerifyStats* s = &local;
  s->patterns_in += candidates.size();

  // The shared_ptr keeps the index alive across the whole pass even if the
  // database is mutated concurrently (it is not, but the ownership is free).
  std::shared_ptr<const LabelIndex> index;
  if (LabelIndexEnabled() && !db.empty() && !candidates.empty()) {
    index = db.label_index();
  }

  PatternSet verified;
  for (const std::vector<const PatternInfo*>& level : ByLevel(candidates)) {
    for (const PatternInfo* candidate : level) {
      PatternInfo info;
      if (CountPattern(db, *candidate, verified, min_support, delta,
                       index.get(), s, &info)) {
        verified.Upsert(std::move(info));
        ++s->patterns_kept;
      }
    }
  }
  local.PublishToRegistry();
  if (stats != nullptr) stats->Accumulate(local);
  return verified;
}

}  // namespace

PatternSet VerifyExact(const GraphDatabase& db, const PatternSet& candidates,
                       int min_support, VerifyStats* stats) {
  return Verify(db, candidates, min_support, /*delta=*/nullptr, stats);
}

PatternSet VerifyDelta(const GraphDatabase& db, const PatternSet& candidates,
                       const PatternSet& old_verified,
                       const std::vector<int>& updated_graphs,
                       int min_support, VerifyStats* stats) {
  DeltaContext delta{&old_verified, TidSet::FromVector(updated_graphs)};
  return Verify(db, candidates, min_support, &delta, stats);
}

}  // namespace partminer
