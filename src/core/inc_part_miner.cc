#include "core/inc_part_miner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timing.h"
#include "core/merge_join.h"
#include "core/verify.h"
#include "graph/isomorphism.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace partminer {

double IncPartMinerResult::UnitSecondsSum() const {
  double total = 0;
  for (const double t : unit_mining_seconds) total += t;
  return total;
}

double IncPartMinerResult::UnitSecondsMax() const {
  double max_t = 0;
  for (const double t : unit_mining_seconds) max_t = std::max(max_t, t);
  return max_t;
}

double IncPartMinerResult::AggregateSeconds() const {
  return route_seconds + UnitSecondsSum() + merge_seconds + verify_seconds;
}

double IncPartMinerResult::ParallelSeconds() const {
  return route_seconds + UnitSecondsMax() + merge_seconds + verify_seconds;
}

namespace {

/// True when `pattern` is a supergraph of any prune-set member.
bool SupergraphOfAny(const Graph& pattern,
                     const std::vector<Graph>& prune_graphs) {
  for (const Graph& pruned : prune_graphs) {
    if (pattern.EdgeCount() >= pruned.EdgeCount() &&
        ContainsSubgraph(pattern, pruned)) {
      return true;
    }
  }
  return false;
}

}  // namespace

IncPartMinerResult IncPartMiner::Update(PartMiner* state,
                                        const GraphDatabase& new_db,
                                        const UpdateLog& log) {
  PM_CHECK(state->mined()) << "IncPartMiner requires a completed Mine()";
  PM_TRACE_SPAN("inc_part_miner.update",
                {{"graphs", new_db.size()},
                 {"updated_graphs", log.updated_graphs.size()}});
  PM_METRIC_COUNTER("partminer.update_runs")->Increment();
  IncPartMinerResult result;

  PartitionedDatabase& part = state->mutable_partitioned();
  const std::vector<MergeTreeNode>& tree = part.tree();
  std::vector<PatternSet>& node_patterns = state->mutable_node_patterns();
  std::vector<NodeFrontier>& node_frontiers = state->mutable_node_frontiers();
  const PatternSet old_verified = state->verified();
  const int root_support = state->ResolveSupport(new_db.size());

  // Route the updates: extend assignments to new vertices, then compute the
  // setword of units that must be re-mined (Figure 12 input `set`).
  Stopwatch route_watch;
  {
    PM_TRACE_SPAN("route", {{"touched_vertices", log.touched_vertices.size()}});
    part.ExtendAssignments(new_db);
    const SetWord touched_units = part.TouchedUnits(new_db,
                                                    log.touched_vertices);
    result.remined_units = touched_units;
  }
  const SetWord& touched = result.remined_units;
  result.route_seconds = route_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.route_ms")
      ->Observe(result.route_seconds * 1e3);

  // Per-unit changed-graph lists: unit j must reconsider graph i only when
  // an update touched a vertex whose edges reach unit j in graph i. This is
  // the per-graph refinement of the paper's per-unit setword — the better
  // the partitioning isolates the updated vertices (Section 4.1), the
  // shorter these lists get outside the hot units.
  // TidSet::Add keeps each set deduplicated and ordered as it is built; no
  // sort/unique pass over the lists afterwards.
  std::vector<TidSet> unit_changed(part.k());
  for (const auto& [graph_index, v] : log.touched_vertices) {
    const SetWord units = part.TouchedUnits(new_db, {{graph_index, v}});
    for (int j = 0; j < part.k(); ++j) {
      if (units.Test(j)) unit_changed[j].Add(graph_index);
    }
  }

  // Re-mine only the touched units (Figure 12 lines 3-5) and only against
  // their changed graphs (IncMergeJoin at the leaves), collecting the prune
  // set P: patterns that vanished from a re-mined unit and exist in no
  // other unit (lines 6-8).
  result.unit_mining_seconds.assign(part.k(), 0.0);
  std::vector<bool> node_dirty(tree.size(), false);
  PatternSet prune_set;

  std::vector<int> touched_nodes;
  for (size_t node = 0; node < tree.size(); ++node) {
    if (tree[node].left != -1) continue;  // Internal node.
    if (touched.Test(tree[node].lo)) {
      touched_nodes.push_back(static_cast<int>(node));
    }
  }

  // Phase A: re-mine each touched unit into a fresh set. Tasks write only
  // their own slots (fresh set, stats, frontier, timing), never
  // node_patterns, so the touched units can run on the work-stealing pool;
  // per-task stats are accumulated afterwards in node order.
  std::vector<PatternSet> fresh_sets(touched_nodes.size());
  std::vector<MergeJoinStats> task_stats(touched_nodes.size());
  auto remine_unit = [&](size_t idx) {
    const int node = touched_nodes[idx];
    const int unit_index = tree[node].lo;
    PM_TRACE_SPAN("inc_unit_mine",
                  {{"unit", unit_index},
                   {"changed_graphs", unit_changed[unit_index].Count()}});
    Stopwatch watch;
    const GraphDatabase unit_db = part.MaterializeUnit(new_db, unit_index);
    MergeJoinOptions leaf_options;
    leaf_options.min_support = state->NodeSupport(node);
    leaf_options.max_edges = state->options().max_edges;
    leaf_options.delta_sweep_max_fraction =
        state->options().inc_delta_sweep_max_fraction;
    fresh_sets[idx] = IncMergeJoin(unit_db, node_patterns[node],
                                   unit_changed[unit_index].ToVector(),
                                   leaf_options, &task_stats[idx],
                                   &node_frontiers[node]);
    result.unit_mining_seconds[unit_index] = watch.ElapsedSeconds();
  };
  const int threads = state->options().unit_mining_threads;
  if (threads > 0 && touched_nodes.size() > 1) {
    // Longest-first by changed-graph count, claimed through a shared
    // counter (see PartMiner::Mine for the scheduling rationale).
    std::vector<size_t> order(touched_nodes.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return unit_changed[tree[touched_nodes[a]].lo].Count() >
             unit_changed[tree[touched_nodes[b]].lo].Count();
    });
    ThreadPool pool(threads);
    std::atomic<size_t> next{0};
    TaskGroup group(&pool);
    for (size_t t = 0; t < order.size(); ++t) {
      group.Spawn([&]() {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        remine_unit(order[i]);
      });
    }
    group.Wait();
  } else {
    for (size_t idx = 0; idx < touched_nodes.size(); ++idx) remine_unit(idx);
  }
  for (const MergeJoinStats& s : task_stats) result.merge_stats.Accumulate(s);

  // Phase B: prune-set diff and apply, serially in ascending node order.
  // The diff consults the *other* units' pattern sets, with earlier-visited
  // units already replaced — an order the serial loop defined and the
  // parallel phase A must not perturb, hence the split.
  for (size_t idx = 0; idx < touched_nodes.size(); ++idx) {
    const int node = touched_nodes[idx];
    for (const PatternInfo& p : node_patterns[node].patterns()) {
      if (fresh_sets[idx].Contains(p.code)) continue;
      // Vanished here; keep in P only if absent from every other unit.
      bool elsewhere = false;
      for (size_t other = 0; other < tree.size() && !elsewhere; ++other) {
        if (static_cast<int>(other) == node || tree[other].left != -1) {
          continue;
        }
        if (node_patterns[other].Contains(p.code)) elsewhere = true;
      }
      if (!elsewhere) prune_set.Upsert(p);
    }
    node_patterns[node] = std::move(fresh_sets[idx]);
    node_dirty[node] = true;
  }
  result.prune_set_size = prune_set.size();

  // The paper prunes the pre-update result by the prune set (Figure 12
  // line 10): supergraphs of a vanished unit pattern lose their known-
  // frequent status. With the exact delta recount below the prune set is
  // advisory; it is reported through prune_set_size (and kept here because
  // the unit-level diff is also what dirties the merge path).
  (void)SupergraphOfAny;

  // Incremental merge (IncMergeJoin, Figure 12 lines 11-12). Because every
  // node's cache is exact and IncMergeJoin recovers a node from its *own*
  // cache plus the update delta, interior nodes other than the root never
  // need eager re-merging — their caches are only consumed by the next
  // incremental round at the same node, and only the root's result is read.
  // The interior is therefore maintained lazily: only the root re-merges
  // (unless nothing at all changed).
  Stopwatch merge_watch;
  const bool anything_dirty =
      std::any_of(node_dirty.begin(), node_dirty.end(),
                  [](bool dirty) { return dirty; });
  if (anything_dirty && tree[part.root()].left != -1) {
    const int root = part.root();
    PM_TRACE_SPAN("inc_merge_root",
                  {{"candidates", node_patterns[root].size()}});
    // The root's recombined database is the database itself (the merge tree
    // covers every unit), so no materialization is needed.
    MergeJoinOptions mj;
    mj.min_support = state->NodeSupport(root);
    mj.max_edges = state->options().max_edges;
    mj.delta_sweep_max_fraction =
        state->options().inc_delta_sweep_max_fraction;
    node_patterns[root] = IncMergeJoin(new_db, node_patterns[root],
                                       log.updated_graphs, mj,
                                       &result.merge_stats,
                                       &node_frontiers[root]);
  }
  result.merge_seconds = merge_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.merge_ms")
      ->Observe(result.merge_seconds * 1e3);

  // Delta verification: candidates are the merged root set plus everything
  // previously frequent (so frequent->infrequent transitions are detected).
  Stopwatch verify_watch;
  PatternSet candidates = node_patterns[part.root()];
  for (const PatternInfo& p : old_verified.patterns()) {
    if (candidates.Contains(p.code)) continue;
    // Pre-update info is stale with respect to the updated database; the
    // delta recount below re-establishes exactness.
    PatternInfo stale = p;
    stale.exact_tids = false;
    candidates.Upsert(std::move(stale));
  }
  PatternSet fresh_verified;
  {
    PM_TRACE_SPAN("verify_delta",
                  {{"candidates", candidates.size()},
                   {"support", root_support}});
    fresh_verified =
        VerifyDelta(new_db, candidates, old_verified, log.updated_graphs,
                    root_support, &result.verify_stats);
  }
  result.verify_seconds = verify_watch.ElapsedSeconds();
  PM_METRIC_HISTOGRAM("partminer.phase.verify_ms")
      ->Observe(result.verify_seconds * 1e3);

  // Classification (Section 4.5): exact, from the two verified sets.
  for (const PatternInfo& p : fresh_verified.patterns()) {
    (old_verified.Contains(p.code) ? result.uf : result.if_).Upsert(p);
  }
  for (const PatternInfo& p : old_verified.patterns()) {
    if (!fresh_verified.Contains(p.code)) result.fi.Upsert(p);
  }

  state->set_verified(fresh_verified);
  result.patterns = std::move(fresh_verified);
  return result;
}

}  // namespace partminer
