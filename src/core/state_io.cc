#include "core/state_io.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace partminer {

namespace {

constexpr const char* kMagic = "partminer-state";
// Version 2 appends an integrity footer (`footer <payload_bytes>
// <fnv1a_hex>`) so truncation and bit flips are detected before any of the
// payload is trusted. Version 1 files (no footer) are rejected.
constexpr int kVersion = 2;
constexpr const char* kFooterTag = "footer";

/// FNV-1a 64-bit over the serialized payload. Not cryptographic — it only
/// needs to catch torn writes and random corruption.
uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void WriteCode(const DfsCode& code, std::ostream& out) {
  out << code.size();
  for (const DfsEdge& e : code.edges()) {
    out << ' ' << e.from << ' ' << e.to << ' ' << e.from_label << ' '
        << e.edge_label << ' ' << e.to_label;
  }
}

// TidSets round-trip through their ascending vector form, keeping the text
// format identical to the pre-bitset one.
void WriteTids(const TidSet& tids, std::ostream& out) {
  const std::vector<int> v = tids.ToVector();
  out << v.size();
  for (const int t : v) out << ' ' << t;
}

void WritePatternSet(const PatternSet& set, std::ostream& out) {
  out << "patterns " << set.size() << '\n';
  for (const PatternInfo& p : set.patterns()) {
    WriteCode(p.code, out);
    out << ' ' << p.support << ' ' << (p.exact_tids ? 1 : 0) << ' ';
    WriteTids(p.tids, out);
    out << '\n';
  }
}

void WriteFrontier(const NodeFrontier& frontier, std::ostream& out) {
  out << "frontier " << (frontier.valid ? 1 : 0) << ' '
      << frontier.map.size() << '\n';
  for (const auto& [code, tids] : frontier.map) {
    WriteCode(code, out);
    out << ' ';
    WriteTids(tids, out);
    out << '\n';
  }
}

Status ReadCode(std::istream& in, DfsCode* code) {
  size_t edges = 0;
  if (!(in >> edges)) return Status::Corruption("bad code length");
  code->Clear();
  for (size_t i = 0; i < edges; ++i) {
    DfsEdge e;
    if (!(in >> e.from >> e.to >> e.from_label >> e.edge_label >>
          e.to_label)) {
      return Status::Corruption("bad code tuple");
    }
    code->Append(e);
  }
  return Status::Ok();
}

Status ReadTids(std::istream& in, TidSet* tids) {
  size_t count = 0;
  if (!(in >> count)) return Status::Corruption("bad tid count");
  tids->Clear();
  for (size_t i = 0; i < count; ++i) {
    int t = 0;
    if (!(in >> t)) return Status::Corruption("bad tid");
    if (t < 0) return Status::Corruption("negative tid");
    tids->Add(t);
  }
  return Status::Ok();
}

Status ReadPatternSet(std::istream& in, PatternSet* set) {
  std::string tag;
  int count = 0;
  if (!(in >> tag >> count) || tag != "patterns") {
    return Status::Corruption("expected 'patterns <n>'");
  }
  *set = PatternSet();
  for (int i = 0; i < count; ++i) {
    PatternInfo p;
    PARTMINER_RETURN_IF_ERROR(ReadCode(in, &p.code));
    int exact = 1;
    if (!(in >> p.support >> exact)) {
      return Status::Corruption("bad pattern header");
    }
    p.exact_tids = exact != 0;
    PARTMINER_RETURN_IF_ERROR(ReadTids(in, &p.tids));
    set->Upsert(std::move(p));
  }
  return Status::Ok();
}

Status ReadFrontier(std::istream& in, NodeFrontier* frontier) {
  std::string tag;
  int valid = 0;
  size_t count = 0;
  if (!(in >> tag >> valid >> count) || tag != "frontier") {
    return Status::Corruption("expected 'frontier <valid> <n>'");
  }
  frontier->valid = valid != 0;
  frontier->map.clear();
  for (size_t i = 0; i < count; ++i) {
    DfsCode code;
    PARTMINER_RETURN_IF_ERROR(ReadCode(in, &code));
    TidSet tids;
    PARTMINER_RETURN_IF_ERROR(ReadTids(in, &tids));
    frontier->map.emplace(std::move(code), std::move(tids));
  }
  return Status::Ok();
}

/// Serializes everything except the integrity footer.
Status SaveMinerStatePayload(const PartMiner& miner, std::ostream& out) {
  if (!miner.mined()) {
    return Status::InvalidArgument("miner has not completed Mine()");
  }
  const PartitionedDatabase& part = miner.partitioned();
  out << kMagic << ' ' << kVersion << '\n';
  out << "root_support " << miner.root_support() << '\n';
  out << "k " << part.k() << '\n';

  const auto& assignments = part.assignments();
  out << "graphs " << assignments.size() << '\n';
  for (const std::vector<int>& units : assignments) {
    out << units.size();
    for (const int u : units) out << ' ' << u;
    out << '\n';
  }

  out << "nodes " << miner.node_patterns().size() << '\n';
  for (size_t node = 0; node < miner.node_patterns().size(); ++node) {
    WritePatternSet(miner.node_patterns()[node], out);
    WriteFrontier(miner.node_frontiers()[node], out);
  }
  out << "verified\n";
  WritePatternSet(miner.verified(), out);
  if (!out) return Status::IoError("write failed");
  return Status::Ok();
}

/// Parses and validates the footer of `contents`, returning the payload
/// (everything before the footer line) in `*payload`.
Status CheckFooter(const std::string& contents, std::string* payload) {
  // The footer is the final non-empty line; find it without trusting
  // anything else about the (possibly corrupted) contents.
  size_t end = contents.size();
  while (end > 0 && contents[end - 1] == '\n') --end;
  const size_t line_start = contents.rfind('\n', end == 0 ? 0 : end - 1);
  const std::string last_line = contents.substr(
      line_start == std::string::npos ? 0 : line_start + 1,
      end - (line_start == std::string::npos ? 0 : line_start + 1));

  std::istringstream footer(last_line);
  std::string tag, hex;
  uint64_t payload_bytes = 0;
  if (!(footer >> tag >> payload_bytes >> hex) || tag != kFooterTag) {
    return Status::Corruption(
        "missing integrity footer (file truncated or not a v" +
        std::to_string(kVersion) + " state file)");
  }
  char* hex_end = nullptr;
  const uint64_t expected_hash = std::strtoull(hex.c_str(), &hex_end, 16);
  if (hex_end == hex.c_str() || *hex_end != '\0') {
    return Status::Corruption("unparseable footer checksum '" + hex + "'");
  }

  *payload = contents.substr(0, line_start == std::string::npos
                                    ? 0
                                    : line_start + 1);
  if (payload->size() != payload_bytes) {
    return Status::Corruption(
        "payload is " + std::to_string(payload->size()) +
        " bytes but the footer records " + std::to_string(payload_bytes) +
        " (file truncated?)");
  }
  const uint64_t actual_hash = Fnv1a(*payload);
  if (actual_hash != expected_hash) {
    std::ostringstream msg;
    msg << "checksum mismatch: payload hashes to " << std::hex
        << actual_hash << " but the footer records " << expected_hash
        << " (file corrupted)";
    return Status::Corruption(msg.str());
  }
  return Status::Ok();
}

}  // namespace

Status SaveMinerState(const PartMiner& miner, std::ostream& out) {
  std::ostringstream payload;
  PARTMINER_RETURN_IF_ERROR(SaveMinerStatePayload(miner, payload));
  const std::string data = payload.str();
  std::ostringstream hex;
  hex << std::hex << Fnv1a(data);
  out << data << kFooterTag << ' ' << data.size() << ' ' << hex.str()
      << '\n';
  if (!out) return Status::IoError("write failed");
  return Status::Ok();
}

Status SaveMinerStateFile(const PartMiner& miner, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return SaveMinerState(miner, out);
}

namespace {

Status LoadMinerStatePayload(std::istream& in, PartMiner* miner) {
  std::string magic, tag;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::Corruption("not a partminer state file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported state version " +
                                   std::to_string(version));
  }

  int root_support = 0;
  if (!(in >> tag >> root_support) || tag != "root_support") {
    return Status::Corruption("expected root_support");
  }
  int k = 0;
  if (!(in >> tag >> k) || tag != "k") {
    return Status::Corruption("expected k");
  }
  if (k != miner->options().partition.k) {
    return Status::InvalidArgument(
        "state was saved with k=" + std::to_string(k) +
        " but the miner is configured with k=" +
        std::to_string(miner->options().partition.k));
  }

  size_t graphs = 0;
  if (!(in >> tag >> graphs) || tag != "graphs") {
    return Status::Corruption("expected graphs");
  }
  std::vector<std::vector<int>> assignments(graphs);
  for (std::vector<int>& units : assignments) {
    size_t n = 0;
    if (!(in >> n)) return Status::Corruption("bad assignment length");
    units.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (!(in >> units[i]) || units[i] < 0 || units[i] >= k) {
        return Status::Corruption("bad unit assignment");
      }
    }
  }

  size_t nodes = 0;
  if (!(in >> tag >> nodes) || tag != "nodes") {
    return Status::Corruption("expected nodes");
  }
  std::vector<PatternSet> node_patterns(nodes);
  std::vector<NodeFrontier> node_frontiers(nodes);
  for (size_t node = 0; node < nodes; ++node) {
    PARTMINER_RETURN_IF_ERROR(ReadPatternSet(in, &node_patterns[node]));
    PARTMINER_RETURN_IF_ERROR(ReadFrontier(in, &node_frontiers[node]));
  }

  if (!(in >> tag) || tag != "verified") {
    return Status::Corruption("expected verified");
  }
  PatternSet verified;
  PARTMINER_RETURN_IF_ERROR(ReadPatternSet(in, &verified));

  // Install (only after everything parsed and validated, so a failed load
  // leaves the miner untouched).
  PartitionedDatabase part =
      PartitionedDatabase::Restore(k, std::move(assignments));
  if (part.tree().size() != nodes) {
    return Status::Corruption("node count does not match the merge tree");
  }
  miner->mutable_partitioned() = std::move(part);
  miner->mutable_node_patterns() = std::move(node_patterns);
  miner->mutable_node_frontiers() = std::move(node_frontiers);
  miner->set_verified(std::move(verified));
  miner->RestoreMinedState(root_support);
  return Status::Ok();
}

}  // namespace

Status LoadMinerState(std::istream& in, PartMiner* miner) {
  // Slurp the whole stream first: nothing in the file is trusted until the
  // footer's length and checksum have validated the payload.
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed");
  const std::string contents = buffer.str();
  if (contents.empty()) return Status::Corruption("empty state file");

  std::string payload;
  PARTMINER_RETURN_IF_ERROR(CheckFooter(contents, &payload));
  std::istringstream payload_in(payload);
  return LoadMinerStatePayload(payload_in, miner);
}

Status LoadMinerStateFile(const std::string& path, PartMiner* miner) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadMinerState(in, miner);
}

}  // namespace partminer
