#ifndef PARTMINER_CORE_VERIFY_H_
#define PARTMINER_CORE_VERIFY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "miner/pattern_set.h"

namespace partminer {

struct VerifyStats {
  int64_t patterns_in = 0;
  int64_t patterns_kept = 0;
  int64_t full_scans = 0;       // Patterns counted against the whole db.
  int64_t graphs_examined = 0;  // Total subgraph-iso host graphs examined.
  int64_t apriori_dropped = 0;  // Dropped without counting (parent missing).

  void Accumulate(const VerifyStats& other);

  /// Adds these values to the process metrics registry (verify.* counters).
  /// VerifyExact/VerifyDelta publish their per-call deltas automatically.
  void PublishToRegistry() const;
};

/// Exact root verification: re-counts every candidate pattern of `candidates`
/// against `db` and keeps those with support >= min_support, with exact
/// supports and TID lists.
///
/// Counting is TID-restricted level by level: 1-edge patterns come from one
/// database scan; a k-edge pattern is counted only inside the TID list of
/// one of its verified (k-1)-edge subpatterns (any occurrence of the pattern
/// implies an occurrence of the subpattern in the same graph). A pattern
/// whose subpatterns all failed verification is dropped without counting —
/// the Apriori property (Theorem 2) guarantees it is infrequent.
PatternSet VerifyExact(const GraphDatabase& db, const PatternSet& candidates,
                       int min_support, VerifyStats* stats);

/// Incremental exact verification after updates: like VerifyExact on the
/// post-update database `db`, but patterns present in `old_verified` (exact
/// on the pre-update database) are re-counted only on `updated_graphs` —
/// their support elsewhere cannot have changed:
///   new_tids = (old_tids \ updated_graphs) ∪ {g ∈ updated_graphs : p ⊑ g}.
/// Patterns absent from `old_verified` are handled exactly as in
/// VerifyExact. This is the delta recount that gives IncPartMiner its
/// update-proportional cost.
PatternSet VerifyDelta(const GraphDatabase& db, const PatternSet& candidates,
                       const PatternSet& old_verified,
                       const std::vector<int>& updated_graphs,
                       int min_support, VerifyStats* stats);

}  // namespace partminer

#endif  // PARTMINER_CORE_VERIFY_H_
